// Command poptsim runs a single (application, graph, policy) cache
// simulation and prints locality statistics and the modeled cycle
// breakdown.
//
// Usage:
//
//	poptsim -app PR -graph URAND -policy P-OPT [-scale default] [-seed 42]
//	poptsim -graph-file web.poptg -app CC -policy DRRIP
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"popt/internal/bench"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/trace"
)

func main() {
	app := flag.String("app", "PR", "application: PR, CC, PR-Delta, Radii, MIS, BFS, SSSP")
	graphName := flag.String("graph", "URAND", "graph from the generated suite (prefix match: DBP, UK, KRON, URAND, HBUBL)")
	graphFile := flag.String("graph-file", "", "load a serialized graph instead of generating one")
	policy := flag.String("policy", "P-OPT", "LLC policy: LRU, DRRIP, SHiP-PC, SHiP-Mem, Hawkeye, T-OPT, P-OPT, P-OPT-SE, P-OPT-inter-only")
	scale := flag.String("scale", "default", "input scale: tiny, default, large")
	seed := flag.Int64("seed", 42, "generator seed")
	check := flag.Bool("check", false, "wrap the LLC policy in a runtime contract checker (panics on Policy-contract violations)")
	dumptrace := flag.Bool("dumptrace", false, "record the run's reference stream and print event counts and encoded size")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "poptsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "poptsim: -memprofile: %v\n", err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.Seed = *seed
	cfg.CheckPolicies = *check
	switch *scale {
	case "tiny":
		cfg.Scale = graph.ScaleTiny
	case "large":
		cfg.Scale = graph.ScaleLarge
	case "default":
	default:
		fail("unknown scale %q", *scale)
	}

	g := pickGraph(cfg, *graphName, *graphFile)
	builder := pickApp(*app)
	setup := pickPolicy(*policy)

	w := builder.New(g)
	fmt.Printf("app=%s graph=%s policy=%s\n", w.Name, g, setup.Name)
	var res bench.Result
	var tr *trace.Trace
	if *dumptrace {
		res, tr = bench.RecordWorkload(cfg, w, setup)
	} else {
		res = bench.RunWorkload(cfg, w, setup)
	}
	if err := w.Check(); err != nil {
		fail("result verification failed: %v", err)
	}
	fmt.Print(res.H.Summary())
	fmt.Printf("instructions=%d  LLC MPKI=%.2f\n", res.Instructions, res.MPKI())
	if res.Reserved > 0 {
		fmt.Printf("reserved LLC ways: %d\n", res.Reserved)
	}
	if res.Streamed > 0 {
		fmt.Printf("Rereference Matrix streamed: %d bytes, tie rate %.1f%%\n", res.Streamed, 100*res.TieRate)
	}
	fmt.Printf("modeled %v\n", res.Breakdown())
	if tr != nil {
		dumpTrace(tr)
	}
	fmt.Println("results verified against golden implementation: OK")
}

// dumpTrace prints the recorded stream's composition and encoding density.
func dumpTrace(tr *trace.Trace) {
	st := tr.Stats()
	fmt.Printf("trace: %d events in %d bytes (%.2f bytes/event)\n",
		st.Events(), tr.Size(), tr.BytesPerEvent())
	fmt.Printf("  accesses=%d (writes=%d)  vertexUpdates=%d  iterations=%d\n",
		st.Accesses, st.Writes, st.VertexUpdates, st.Iterations)
	fmt.Printf("  tileSwitches=%d  mutedRegions=%d  tickEvents=%d (instrs=%d)\n",
		st.TileSwitches, st.MutedRegions, st.TickEvents, st.TickedInstrs)
}

func pickGraph(cfg bench.Config, name, file string) *graph.Graph {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		g, err := graph.Read(f)
		if err != nil {
			fail("loading graph: %v", err)
		}
		return g
	}
	for _, g := range cfg.Suite() {
		if strings.HasPrefix(strings.ToUpper(g.Name), strings.ToUpper(name)) {
			return g
		}
	}
	fail("no suite graph matches %q (have DBP, UK, KRON, URAND, HBUBL)", name)
	return nil
}

func pickApp(name string) kernels.Builder {
	for _, b := range append(kernels.All(), kernels.Extensions()...) {
		if strings.EqualFold(b.Name, name) {
			return b
		}
	}
	fail("unknown app %q", name)
	return kernels.Builder{}
}

func pickPolicy(name string) bench.Setup {
	setups := []bench.Setup{
		bench.LRUSetup(), bench.DIPSetup(), bench.DRRIPSetup(), bench.SHiPPCSetup(), bench.SHiPMemSetup(),
		bench.HawkeyeSetup(), bench.SDBPSetup(), bench.TOPTSetup(),
		bench.POPTSetup(core.InterIntra, 8, true),
		bench.POPTSetup(core.InterOnly, 8, true),
		bench.POPTSetup(core.SingleEpoch, 8, true),
	}
	for _, s := range setups {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	fail("unknown policy %q", name)
	return bench.Setup{}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "poptsim: "+format+"\n", args...)
	os.Exit(1)
}
