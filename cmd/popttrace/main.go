// Command popttrace manages the persistent trace corpus: container files
// holding chunked reference streams that poptbench records once and
// replays across processes (poptbench -corpus).
//
// Usage:
//
//	popttrace record -corpus DIR [-scale tiny|default|large] [-seed N] [-kernels PR,CC,...]
//	popttrace ls -corpus DIR
//	popttrace info FILE...
//	popttrace verify -corpus DIR | popttrace verify FILE...
//	popttrace rechunk [-chunkbytes N] SRC DST
//
// record pre-warms a corpus with the suite streams the experiment
// drivers look up (one LRU-recorded LLC stream per kernel × suite
// graph); ls and info summarize containers from their footers; verify
// walks every chunk (CRC plus structural scan) and cross-checks the
// footer statistics; rechunk rewrites a container with a different chunk
// size without re-running any kernel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"popt/internal/bench"
	"popt/internal/corpus"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = cmdRecord(args)
	case "ls":
		err = cmdLs(args)
	case "info":
		err = cmdInfo(args)
	case "verify":
		err = cmdVerify(args)
	case "rechunk":
		err = cmdRechunk(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "popttrace: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "popttrace %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  popttrace record -corpus DIR [-scale S] [-seed N] [-kernels LIST]
  popttrace ls -corpus DIR
  popttrace info FILE...
  popttrace verify -corpus DIR | popttrace verify FILE...
  popttrace rechunk [-chunkbytes N] SRC DST
`)
}

func parseScale(s string) (graph.Scale, error) {
	switch s {
	case "tiny":
		return graph.ScaleTiny, nil
	case "default":
		return graph.ScaleDefault, nil
	case "large":
		return graph.ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

// cmdRecord pre-warms a corpus with the (kernel × suite graph) streams
// under the exact keys the sweep drivers look up: workload = graph name,
// schedule = kernel builder name, scale/seed from the config. Recording
// uses the LRU setup; the stream is policy-independent, so which setup
// records is irrelevant (golden-tested in the bench package).
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	dir := fs.String("corpus", "", "corpus directory (required)")
	scale := fs.String("scale", "default", "input scale: tiny, default, or large")
	seed := fs.Int64("seed", 42, "generator seed")
	kernelList := fs.String("kernels", "", "comma-separated kernel names (default: all)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-corpus is required")
	}
	sc, err := parseScale(*scale)
	if err != nil {
		return err
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	defer store.Close()

	builders := kernels.All()
	if *kernelList != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*kernelList, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []kernels.Builder
		for _, b := range builders {
			if want[b.Name] {
				sel = append(sel, b)
				delete(want, b.Name)
			}
		}
		for n := range want {
			return fmt.Errorf("unknown kernel %q", n)
		}
		builders = sel
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = sc
	cfg.Seed = *seed
	cfg.Corpus = store
	for _, g := range cfg.Suite() {
		for _, b := range builders {
			key := cfg.StreamKey(g, b.Name)
			if ent := store.Lookup(key); ent != nil {
				fmt.Printf("have   %s/%s (%d events, %d chunks)\n", g.Name, b.Name, ent.Reader().Events(), ent.Reader().Chunks())
				continue
			}
			start := time.Now()
			_, ent, err := bench.RecordLLCToCorpus(cfg, b.New(g), bench.LRUSetup(), key)
			if err != nil {
				return fmt.Errorf("recording %s/%s: %w", g.Name, b.Name, err)
			}
			fmt.Printf("record %s/%s (%d events, %d chunks, %d bytes, %s)\n",
				g.Name, b.Name, ent.Reader().Events(), ent.Reader().Chunks(), ent.Size,
				time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

func kindName(k byte) string {
	switch k {
	case trace.KindTrace:
		return "trace"
	case trace.KindLLC:
		return "llc"
	}
	return fmt.Sprintf("0x%02x", k)
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("corpus", "", "corpus directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-corpus is required")
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	defer store.Close()
	items, err := store.Manifest()
	if err != nil {
		return err
	}
	fmt.Printf("%-5s %12s %10s %7s  %s\n", "kind", "events", "size", "chunks", "key")
	bad := 0
	for _, it := range items {
		if it.Err != nil {
			bad++
			fmt.Printf("%-5s %12s %10s %7s  %s: %v\n", "??", "-", "-", "-", it.File, it.Err)
			continue
		}
		fmt.Printf("%-5s %12d %10d %7d  %s/%s/%s/%d\n",
			kindName(it.Kind), it.Events, it.Size, it.Chunks,
			it.Key.Workload, it.Key.Schedule, it.Key.Scale, it.Key.Seed)
	}
	fmt.Printf("%d entries, %d unreadable\n", len(items), bad)
	if bad > 0 {
		return fmt.Errorf("%d unreadable entries", bad)
	}
	return nil
}

func cmdInfo(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("name container files")
	}
	for _, path := range args {
		r, closer, err := corpus.OpenFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		m := r.Meta()
		fmt.Printf("%s:\n", path)
		fmt.Printf("  kind      %s\n", kindName(r.Kind()))
		fmt.Printf("  key       %s/%s/%s/%d\n", m.Workload, m.Schedule, m.Scale, m.Seed)
		fmt.Printf("  size      %s (%s payload, %s max chunk)\n",
			bench.HumanBytes(uint64(r.Size())), bench.HumanBytes(uint64(r.PayloadBytes())),
			bench.HumanBytes(uint64(r.MaxChunkBytes())))
		fmt.Printf("  windows   %s\n", r.WindowMode())
		fmt.Printf("  chunks    %d\n", r.Chunks())
		fmt.Printf("  events    %d\n", r.Events())
		fmt.Printf("  crc       %08x\n", r.StreamCRC())
		if s, ok := r.TraceStats(); ok {
			fmt.Printf("  accesses  %d (%d writes)\n", s.Accesses, s.Writes)
		}
		if instructions, l1, l2, s, ok := r.LLCTotals(); ok {
			fmt.Printf("  instrs    %d\n", instructions)
			fmt.Printf("  llc-in    %d accesses, %d writebacks\n", s.Accesses, s.Writebacks)
			fmt.Printf("  l1        %+v\n", l1)
			fmt.Printf("  l2        %+v\n", l2)
		}
		closer.Close()
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("corpus", "", "verify every entry of this corpus directory")
	fs.Parse(args)
	paths := fs.Args()
	if *dir != "" {
		store, err := corpus.Open(*dir)
		if err != nil {
			return err
		}
		items, err := store.Manifest()
		store.Close()
		if err != nil {
			return err
		}
		// Unreadable entries stay in the list: the per-file pass below
		// reports their open error as a verification failure.
		for _, it := range items {
			paths = append(paths, *dir+string(os.PathSeparator)+it.File)
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("nothing to verify: name files or pass -corpus DIR")
	}
	failed := 0
	for _, path := range paths {
		r, closer, err := corpus.OpenFile(path)
		if err != nil {
			failed++
			fmt.Printf("FAIL %s: %v\n", path, err)
			continue
		}
		if err := r.Verify(); err != nil {
			failed++
			fmt.Printf("FAIL %s: %v\n", path, err)
		} else {
			fmt.Printf("ok   %s (%d chunks, %d events)\n", path, r.Chunks(), r.Events())
		}
		closer.Close()
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d containers failed verification", failed, len(paths))
	}
	return nil
}

func cmdRechunk(args []string) error {
	fs := flag.NewFlagSet("rechunk", flag.ExitOnError)
	chunkBytes := fs.Int("chunkbytes", trace.DefaultChunkBytes, "target chunk payload size in bytes")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: popttrace rechunk [-chunkbytes N] SRC DST")
	}
	src, dst := fs.Arg(0), fs.Arg(1)
	r, closer, err := corpus.OpenFile(src)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	defer closer.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := r.Rechunk(out, *chunkBytes); err != nil {
		out.Close()
		os.Remove(dst)
		return fmt.Errorf("rechunking %s: %w", src, err)
	}
	if err := out.Close(); err != nil {
		return err
	}
	nr, ncloser, err := corpus.OpenFile(dst)
	if err != nil {
		return fmt.Errorf("reopening %s: %w", dst, err)
	}
	defer ncloser.Close()
	fmt.Printf("%s: %d chunks (%d bytes) -> %s: %d chunks (%d bytes)\n",
		src, r.Chunks(), r.Size(), dst, nr.Chunks(), nr.Size())
	return nil
}
