// Command poptbench regenerates the paper's tables and figures.
//
// Usage:
//
//	poptbench -list
//	poptbench [-scale tiny|default|large] [-seed N] all
//	poptbench fig10 fig12a table4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"popt/internal/bench"
	"popt/internal/corpus"
	"popt/internal/graph"
)

func main() {
	scale := flag.String("scale", "default", "input scale: tiny, default, or large")
	seed := flag.Int64("seed", 42, "generator seed")
	layout := flag.String("layout", "auto", "adjacency storage layout: auto (compact at large scale, plain otherwise), plain, or compact; reports are identical across layouts")
	memstats := flag.Bool("memstats", false, "report resident bytes per shared artifact (suite adjacencies, merged transposes) and exit unless experiments are also named")
	list := flag.Bool("list", false, "list experiments and exit")
	format := flag.String("format", "table", "output format: table or csv")
	workers := flag.Int("j", 0, "sweep worker count: 0 = GOMAXPROCS, 1 = serial (output is identical at any count)")
	progress := flag.Bool("progress", false, "report per-cell completion and timing on stderr")
	noreplay := flag.Bool("noreplay", false, "disable reference-stream record/replay sharing (every cell re-executes its kernel; output is identical either way)")
	corpusDir := flag.String("corpus", "", "persist recorded reference streams as container files in this directory and replay from it; a warm corpus skips every record phase (output is identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "poptbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "poptbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "poptbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "poptbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.NoReplay = *noreplay
	if *corpusDir != "" {
		store, err := corpus.Open(*corpusDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "poptbench: -corpus: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		cfg.Corpus = store
	}
	if *progress {
		// One mutex serializes all three heartbeat sources (cell
		// completions arrive serialized, but phase events come straight
		// from sweep workers) so stderr lines never interleave.
		var mu sync.Mutex
		cfg.Progress = func(ev bench.CellEvent) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s)\n", ev.Done, ev.Total, ev.Key, ev.Elapsed.Round(time.Microsecond))
		}
		cfg.PhaseProgress = func(ev bench.PhaseEvent) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "  %s %s (%s)\n", ev.Phase, ev.Key, ev.Elapsed.Round(time.Microsecond))
		}
		graph.SuiteProgress = func(g *graph.Graph, elapsed time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "  built %v (%s)\n", g, elapsed.Round(time.Millisecond))
		}
	}
	switch *scale {
	case "tiny":
		cfg.Scale = graph.ScaleTiny
	case "default":
		cfg.Scale = graph.ScaleDefault
	case "large":
		cfg.Scale = graph.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "poptbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	lay, err := graph.ParseLayout(*layout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "poptbench: %v\n", err)
		os.Exit(2)
	}
	cfg.Layout = lay

	if *memstats {
		rep := bench.MemStats(cfg)
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", rep.ID, rep.Title, rep.CSV())
		} else {
			fmt.Println(rep.String())
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		if *memstats {
			return
		}
		fmt.Fprintln(os.Stderr, "poptbench: name experiments to run (or 'all'); -list shows them")
		os.Exit(2)
	}
	var exps []bench.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = bench.Registry()
	} else {
		for _, id := range ids {
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "poptbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		start := time.Now()
		rep := e.Run(cfg)
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", rep.ID, rep.Title, rep.CSV())
		} else {
			fmt.Println(rep.String())
			fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
