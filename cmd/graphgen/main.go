// Command graphgen generates, inspects, and converts input graphs.
//
// Usage:
//
//	graphgen -kind kron -n 131072 -deg 8 -o kron.poptg
//	graphgen -kind suite -scale default -o dir/          (writes all five)
//	graphgen -stats kron.poptg
//	graphgen -edges edges.txt -n 1000 -o mine.poptg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"popt/internal/graph"
)

func main() {
	kind := flag.String("kind", "", "generator: kron, urand, powerlaw, community, mesh, suite")
	n := flag.Int("n", 1<<17, "vertex count (rows*cols for mesh)")
	deg := flag.Int("deg", 8, "average degree")
	seed := flag.Int64("seed", 42, "seed")
	scale := flag.String("scale", "default", "suite scale: tiny, default, large")
	out := flag.String("o", "", "output file (or directory for -kind suite)")
	stats := flag.String("stats", "", "print statistics of a serialized graph and exit")
	edges := flag.String("edges", "", "build from a 'src dst' edge-list file (requires -n)")
	mtx := flag.String("mtx", "", "build from a MatrixMarket coordinate file")
	progress := flag.Bool("progress", false, "report per-graph build timing on stderr (suite builds)")
	layout := flag.String("layout", "plain", "adjacency storage layout: auto, plain, or compact (applies to generated and loaded graphs)")
	memstats := flag.Bool("memstats", false, "print resident adjacency bytes vs the plain-CSR equivalent for each graph")
	flag.Parse()

	lay, err := graph.ParseLayout(*layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(2)
	}
	reportMem = *memstats

	if *progress {
		graph.SuiteProgress = func(g *graph.Graph, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "built %v (%s)\n", g, elapsed.Round(time.Millisecond))
		}
	}

	s := graph.ScaleDefault
	switch *scale {
	case "tiny":
		s = graph.ScaleTiny
	case "large":
		s = graph.ScaleLarge
	}
	relayout := func(g *graph.Graph) *graph.Graph { return g.WithLayout(lay.Resolve(s)) }

	switch {
	case *stats != "":
		g := relayout(load(*stats))
		printStats(g)
	case *mtx != "":
		f, err := os.Open(*mtx)
		check(err)
		defer f.Close()
		g, err := graph.ParseMatrixMarket(f, filepath.Base(*mtx))
		check(err)
		save(relayout(g), *out)
	case *edges != "":
		f, err := os.Open(*edges)
		check(err)
		defer f.Close()
		g, err := graph.ParseEdgeList(f, filepath.Base(*edges), *n)
		check(err)
		save(relayout(g), *out)
	case *kind == "suite":
		for _, g := range graph.SuiteLayout(s, *seed, lay) {
			save(g, filepath.Join(*out, g.Name+".poptg"))
		}
	case *kind != "":
		g := relayout(generate(*kind, *n, *deg, *seed))
		save(g, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// reportMem mirrors -memstats: when set, save and printStats append a
// resident-footprint line comparing the graph's adjacency bytes under its
// current layout with the plain-CSR equivalent.
var reportMem bool

func memLine(g *graph.Graph) string {
	adj := g.Out.MemBytes() + g.In.MemBytes()
	plain := 2 * (8*uint64(g.NumVertices()+1) + 4*uint64(g.NumEdges()))
	return fmt.Sprintf("  adjacency %s resident (plain-CSR equivalent %s, %.2fx)",
		humanBytes(adj), humanBytes(plain), float64(plain)/float64(adj))
}

func humanBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

func generate(kind string, n, deg int, seed int64) *graph.Graph {
	switch kind {
	case "kron":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return graph.Kron(scale, deg, seed)
	case "urand":
		return graph.Uniform(n, n*deg, seed)
	case "powerlaw":
		return graph.PowerLaw(n, deg, 2.0, seed)
	case "community":
		return graph.Community(n, deg, 1024, 0.85, seed)
	case "mesh":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Mesh(side, side)
	}
	fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", kind)
	os.Exit(2)
	return nil
}

func load(path string) *graph.Graph {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	g, err := graph.Read(f)
	check(err)
	return g
}

func save(g *graph.Graph, path string) {
	if path == "" {
		printStats(g)
		return
	}
	if dir := filepath.Dir(path); dir != "." {
		check(os.MkdirAll(dir, 0o755))
	}
	f, err := os.Create(path)
	check(err)
	defer f.Close()
	check(graph.Write(f, g))
	fmt.Printf("wrote %s: %v\n", path, g)
	if reportMem {
		fmt.Println(memLine(g))
	}
}

func printStats(g *graph.Graph) {
	check(g.Validate())
	maxDeg, at := g.MaxDegree()
	fmt.Printf("%v\n  max out-degree %d (vertex %d)\n  degree histogram (pow2 buckets): %v\n",
		g, maxDeg, at, g.DegreeHistogram())
	if reportMem {
		fmt.Println(memLine(g))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
