// Command graphgen generates, inspects, and converts input graphs.
//
// Usage:
//
//	graphgen -kind kron -n 131072 -deg 8 -o kron.poptg
//	graphgen -kind suite -scale default -o dir/          (writes all five)
//	graphgen -stats kron.poptg
//	graphgen -edges edges.txt -n 1000 -o mine.poptg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"popt/internal/graph"
)

func main() {
	kind := flag.String("kind", "", "generator: kron, urand, powerlaw, community, mesh, suite")
	n := flag.Int("n", 1<<17, "vertex count (rows*cols for mesh)")
	deg := flag.Int("deg", 8, "average degree")
	seed := flag.Int64("seed", 42, "seed")
	scale := flag.String("scale", "default", "suite scale: tiny, default, large")
	out := flag.String("o", "", "output file (or directory for -kind suite)")
	stats := flag.String("stats", "", "print statistics of a serialized graph and exit")
	edges := flag.String("edges", "", "build from a 'src dst' edge-list file (requires -n)")
	mtx := flag.String("mtx", "", "build from a MatrixMarket coordinate file")
	progress := flag.Bool("progress", false, "report per-graph build timing on stderr (suite builds)")
	flag.Parse()

	if *progress {
		graph.SuiteProgress = func(g *graph.Graph, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "built %v (%s)\n", g, elapsed.Round(time.Millisecond))
		}
	}

	switch {
	case *stats != "":
		g := load(*stats)
		printStats(g)
	case *mtx != "":
		f, err := os.Open(*mtx)
		check(err)
		defer f.Close()
		g, err := graph.ParseMatrixMarket(f, filepath.Base(*mtx))
		check(err)
		save(g, *out)
	case *edges != "":
		f, err := os.Open(*edges)
		check(err)
		defer f.Close()
		g, err := graph.ParseEdgeList(f, filepath.Base(*edges), *n)
		check(err)
		save(g, *out)
	case *kind == "suite":
		s := graph.ScaleDefault
		switch *scale {
		case "tiny":
			s = graph.ScaleTiny
		case "large":
			s = graph.ScaleLarge
		}
		for _, g := range graph.Suite(s, *seed) {
			save(g, filepath.Join(*out, g.Name+".poptg"))
		}
	case *kind != "":
		g := generate(*kind, *n, *deg, *seed)
		save(g, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(kind string, n, deg int, seed int64) *graph.Graph {
	switch kind {
	case "kron":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return graph.Kron(scale, deg, seed)
	case "urand":
		return graph.Uniform(n, n*deg, seed)
	case "powerlaw":
		return graph.PowerLaw(n, deg, 2.0, seed)
	case "community":
		return graph.Community(n, deg, 1024, 0.85, seed)
	case "mesh":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Mesh(side, side)
	}
	fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", kind)
	os.Exit(2)
	return nil
}

func load(path string) *graph.Graph {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	g, err := graph.Read(f)
	check(err)
	return g
}

func save(g *graph.Graph, path string) {
	if path == "" {
		printStats(g)
		return
	}
	if dir := filepath.Dir(path); dir != "." {
		check(os.MkdirAll(dir, 0o755))
	}
	f, err := os.Create(path)
	check(err)
	defer f.Close()
	check(graph.Write(f, g))
	fmt.Printf("wrote %s: %v\n", path, g)
}

func printStats(g *graph.Graph) {
	check(g.Validate())
	maxDeg, at := g.MaxDegree()
	fmt.Printf("%v\n  max out-degree %d (vertex %d)\n  degree histogram (pow2 buckets): %v\n",
		g, maxDeg, at, g.DegreeHistogram())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
