// Command poptmrc computes locality profiles — miss-ratio curves and
// reuse-distance histograms — for a kernel's memory reference stream,
// optionally restricted to its irregularly accessed data. These profiles
// motivate the paper (graph reuse defeats history-based policies) and size
// simulated caches.
//
// Usage:
//
//	poptmrc -app PR -graph KRON [-scale tiny] [-irregular=true]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popt/internal/analysis"
	"popt/internal/bench"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

func main() {
	app := flag.String("app", "PR", "application: PR, CC, PR-Delta, Radii, MIS")
	gname := flag.String("graph", "URAND", "suite graph prefix")
	scale := flag.String("scale", "tiny", "input scale: tiny, default, large")
	irregular := flag.Bool("irregular", true, "restrict the trace to irregular arrays")
	flag.Parse()

	cfg := bench.DefaultConfig()
	switch *scale {
	case "tiny":
		cfg.Scale = graph.ScaleTiny
	case "default":
		cfg.Scale = graph.ScaleDefault
	case "large":
		cfg.Scale = graph.ScaleLarge
	default:
		fmt.Fprintln(os.Stderr, "poptmrc: unknown scale")
		os.Exit(2)
	}

	var g *graph.Graph
	for _, cand := range cfg.Suite() {
		if strings.HasPrefix(strings.ToUpper(cand.Name), strings.ToUpper(*gname)) {
			g = cand
		}
	}
	if g == nil {
		fmt.Fprintln(os.Stderr, "poptmrc: unknown graph (DBP, UK, KRON, URAND, HBUBL)")
		os.Exit(2)
	}
	var builder kernels.Builder
	for _, b := range kernels.All() {
		if strings.EqualFold(b.Name, *app) {
			builder = b
		}
	}
	if builder.New == nil {
		fmt.Fprintln(os.Stderr, "poptmrc: unknown app")
		os.Exit(2)
	}

	w := builder.New(g)
	trace := analysis.Capture(w, *irregular)
	fmt.Printf("%s on %v: %d accesses captured (irregular-only=%v)\n\n", w.Name, g, len(trace), *irregular)

	// Capacities spanning the footprint in powers of two.
	mrcCaps := []int{}
	footprint := 0
	for _, a := range w.Irregular {
		footprint += a.NumLines()
	}
	if !*irregular || footprint == 0 {
		footprint = 1 << 16
	}
	for c := 16; c <= 2*footprint; c *= 2 {
		mrcCaps = append(mrcCaps, c)
	}
	mrc := analysis.ComputeMRC(trace, mrcCaps)
	fmt.Println("Miss-ratio curve (fully associative LRU):")
	fmt.Print(mrc)

	fmt.Println("\nReuse (stack) distance histogram, power-of-two buckets:")
	hist := analysis.ReuseHistogram(trace)
	for b := 0; b < len(hist)-1; b++ {
		if hist[b] == 0 {
			continue
		}
		fmt.Printf("  [%8d, %8d)  %9d (%.1f%%)\n", pow2lo(b), 1<<uint(b+1), hist[b],
			100*float64(hist[b])/float64(len(trace)))
	}
	fmt.Printf("  cold                 %9d (%.1f%%)\n", hist[len(hist)-1],
		100*float64(hist[len(hist)-1])/float64(len(trace)))

	ws := analysis.WorkingSetLines(trace, 0.10)
	fmt.Printf("\nworking set for <=10%% miss ratio: %d lines (%d KB)\n", ws, ws*mem.LineSize/1024)
}

// pow2lo returns the lower bound of power-of-two bucket b.
func pow2lo(b int) int {
	if b == 0 {
		return 0
	}
	return 1 << uint(b)
}
