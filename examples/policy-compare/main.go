// Policy comparison: run one application across the full replacement
// policy zoo on one graph and print a locality league table — a
// miniaturized Figure 4.
//
//	go run ./examples/policy-compare [-app PR-Delta] [-graph KRON]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popt/internal/bench"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

func main() {
	app := flag.String("app", "PR", "application: PR, CC, PR-Delta, Radii, MIS")
	gname := flag.String("graph", "KRON", "suite graph prefix")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = graph.ScaleTiny

	var g *graph.Graph
	for _, cand := range cfg.Suite() {
		if strings.HasPrefix(strings.ToUpper(cand.Name), strings.ToUpper(*gname)) {
			g = cand
		}
	}
	if g == nil {
		fmt.Fprintln(os.Stderr, "unknown graph; use DBP, UK, KRON, URAND, or HBUBL")
		os.Exit(2)
	}
	var builder kernels.Builder
	for _, b := range kernels.All() {
		if strings.EqualFold(b.Name, *app) {
			builder = b
		}
	}
	if builder.New == nil {
		fmt.Fprintln(os.Stderr, "unknown app; use PR, CC, PR-Delta, Radii, or MIS")
		os.Exit(2)
	}

	setups := []bench.Setup{
		bench.LRUSetup(), bench.DIPSetup(), bench.DRRIPSetup(), bench.SHiPPCSetup(), bench.SHiPMemSetup(),
		bench.HawkeyeSetup(), bench.SDBPSetup(),
		bench.POPTSetup(core.InterOnly, 8, true),
		bench.POPTSetup(core.SingleEpoch, 8, true),
		bench.POPTSetup(core.InterIntra, 8, true),
		bench.TOPTSetup(),
	}
	fmt.Printf("%s on %v\n\n", builder.Name, g)
	fmt.Printf("%-18s %10s %10s %12s %8s\n", "policy", "LLC miss%", "MPKI", "DRAM reads", "ways")
	for _, s := range setups {
		w := builder.New(g)
		res := bench.RunWorkload(cfg, w, s)
		if err := w.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "%s corrupted results: %v\n", s.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-18s %9.1f%% %10.2f %12d %8d\n",
			s.Name, 100*res.H.LLCMissRate(), res.MPKI(), res.H.DRAMReads, res.Reserved)
	}
}
