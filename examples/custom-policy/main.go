// Custom policy: the cache simulator's Policy interface is open — this
// example implements FIFO replacement from scratch, plugs it into the LLC
// next to the built-in policies, and races it on PageRank.
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

// FIFO evicts in insertion order, ignoring hits entirely.
type FIFO struct {
	g    cache.Geometry
	next []int // per set, next way to replace (round robin over fills)
}

// Name implements cache.Policy.
func (p *FIFO) Name() string { return "FIFO" }

// Bind implements cache.Policy.
func (p *FIFO) Bind(g cache.Geometry) {
	p.g = g
	p.next = make([]int, g.Sets)
}

// OnHit implements cache.Policy; FIFO ignores hits.
func (p *FIFO) OnHit(set, way int, acc mem.Access) {}

// OnFill implements cache.Policy.
func (p *FIFO) OnFill(set, way int, acc mem.Access) {}

// OnEvict implements cache.Policy.
func (p *FIFO) OnEvict(set, way int) {}

// Victim implements cache.Policy: strict rotation over the usable ways.
func (p *FIFO) Victim(set int, lines []cache.Line, acc mem.Access) int {
	usable := p.g.Ways - p.g.ReservedWays
	w := p.g.ReservedWays + p.next[set]%usable
	p.next[set]++
	return w
}

func main() {
	g := graph.Kron(14, 8, 9)
	fmt.Println("input:", g)
	for _, pol := range []func() cache.Policy{
		func() cache.Policy { return &FIFO{} },
		func() cache.Policy { return cache.NewLRU() },
		func() cache.Policy { return cache.NewDRRIP(1) },
	} {
		w := kernels.NewPageRank(g)
		h := cache.NewHierarchy(cache.Scaled(pol))
		r := kernels.NewRunner(h, nil)
		w.Run(r)
		if err := w.Check(); err != nil {
			panic(err)
		}
		fmt.Printf("%-6s LLC miss rate %5.1f%%  MPKI %6.2f\n",
			h.LLC.Policy().Name(), 100*h.LLCMissRate(), r.Sim().MPKI())
	}
}
