// Prefetch: the paper's future-work extension — using the transpose for
// timely prefetching of irregular data instead of (or on top of)
// replacement. Compares PageRank under DRRIP, DRRIP + transpose
// prefetcher, P-OPT, and P-OPT + prefetcher.
//
//	go run ./examples/prefetch
package main

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

func main() {
	g := graph.Uniform(1<<16, 8<<16, 21)
	fmt.Println("input:", g)
	fmt.Printf("\n%-16s %12s %12s %12s %12s\n", "setup", "LLC misses", "demand miss%", "prefetches", "DRAM reads")

	run := func(name string, usePOPT, usePrefetch bool) {
		w := kernels.NewPageRank(g)
		var pol cache.Policy
		cfg := cache.Scaled(func() cache.Policy { return pol })
		var hooks []core.VertexIndexed
		reserve := 0
		if usePOPT {
			p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 8, w.Irregular...)
			pol = p
			hooks = append(hooks, p)
			reserve = p.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
		} else {
			pol = cache.NewDRRIP(1)
		}
		h := cache.NewHierarchy(cfg)
		if reserve > 0 {
			h.LLC.Reserve(reserve)
		}
		if usePrefetch {
			hooks = append(hooks, core.NewTransposePrefetcher(h, &w.G.In, w.Irregular[0], 4))
		}
		var hook core.VertexIndexed
		if len(hooks) > 0 {
			hook = core.CombineHooks(hooks...)
		}
		w.Run(kernels.NewRunner(h, hook))
		if err := w.Check(); err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %12d %11.1f%% %12d %12d\n",
			name, h.LLC.Stats.Misses, 100*h.LLCMissRate(), h.PrefetchIssued, h.DRAMReads)
	}

	run("DRRIP", false, false)
	run("DRRIP+prefetch", false, true)
	run("P-OPT", true, false)
	run("P-OPT+prefetch", true, true)
	fmt.Println("\nNote: prefetching trades DRAM bandwidth (reads) for demand latency;")
	fmt.Println("P-OPT cuts DRAM traffic itself. The two compose (see related work, Section VIII).")
}
