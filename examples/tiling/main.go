// Tiling: demonstrate the Fig. 13 interaction between CSR-segmenting and
// P-OPT — tiling shrinks the Rereference Matrix columns P-OPT pins, and
// P-OPT reaches a target miss rate with fewer tiles than DRRIP.
//
//	go run ./examples/tiling
package main

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

func main() {
	g := graph.Uniform(1<<16, 8<<16, 3)
	fmt.Println("input:", g)
	fmt.Printf("\n%6s  %-12s %-12s %s\n", "tiles", "DRRIP misses", "P-OPT misses", "P-OPT reserved ways")

	baseline := simulate(g, 1, false)
	fmt.Printf("(untiled DRRIP baseline: %d LLC misses)\n", baseline)

	for _, tiles := range []int{1, 2, 4, 8} {
		drrip := simulate(g, tiles, false)
		popt, ways := simulatePOPT(g, tiles)
		fmt.Printf("%6d  %-12s %-12s %d\n", tiles,
			norm(drrip, baseline), norm(popt, baseline), ways)
	}
}

func norm(x, base uint64) string { return fmt.Sprintf("%.2f", float64(x)/float64(base)) }

func simulate(g *graph.Graph, tiles int, _ bool) uint64 {
	seg := graph.Segment(g, tiles)
	w := kernels.NewPageRankTiled(g, seg)
	h := cache.NewHierarchy(cache.Scaled(func() cache.Policy { return cache.NewDRRIP(1) }))
	w.Run(kernels.NewRunner(h, nil))
	mustOK(w)
	return h.LLC.Stats.Misses
}

func simulatePOPT(g *graph.Graph, tiles int) (uint64, int) {
	seg := graph.Segment(g, tiles)
	w := kernels.NewPageRankTiled(g, seg)
	var tp *core.TilePolicy
	cfg := cache.Scaled(func() cache.Policy { return tp })
	tp = core.NewTiledPOPT(seg, w.Irregular[0], core.InterIntra, 8)
	ways := tp.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
	h := cache.NewHierarchy(cfg)
	if ways > 0 {
		h.LLC.Reserve(ways)
	}
	w.Run(kernels.NewRunner(h, tp))
	mustOK(w)
	return h.LLC.Stats.Misses, ways
}

func mustOK(w *kernels.Workload) {
	if err := w.Check(); err != nil {
		panic(err)
	}
}
