// Multicore: run parallel PageRank on the modeled 8-core machine
// (Table I) under DRRIP and under P-OPT with serialized epochs, and
// report parallel locality, bank balance, and modeled cycles — the
// Sniper-side view of the paper's evaluation.
//
//	go run ./examples/multicore
package main

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/mem"
	"popt/internal/multicore"
)

func main() {
	g := graph.Uniform(1<<17, 4<<17, 13)
	cfg := multicore.Default8Core()
	fmt.Printf("input: %v on %d cores, %d NUCA banks\n\n", g, cfg.Cores, cfg.Banks)
	fmt.Printf("%-8s %12s %12s %14s %12s %10s\n", "policy", "LLC misses", "DRAM reads", "maxBankShare", "cycles", "barriers")

	epochSize := (g.NumVertices() + 255) / 256

	// DRRIP: free-running parallel execution.
	mD := multicore.NewMachine(cfg, cache.NewDRRIP(1), 0)
	drrip := multicore.ParallelPageRank(mD, g, nil, 2, epochSize, false)
	report("DRRIP", mD, drrip)

	// P-OPT: epochs serialized, reserved ways, designated main thread.
	// Pre-plan the irregular array's placement (same allocation order the
	// kernel uses).
	sp := mem.NewSpace()
	sp.AllocBytes("rank", g.NumVertices(), 4, false)
	contrib := sp.AllocBytes("contrib", g.NumVertices(), 4, true)
	p := core.BuildPOPT(&g.Out, g.NumVertices(), core.InterIntra, 8, contrib)
	sets := cfg.LLCSize / (cfg.LLCWays * mem.LineSize)
	mP := multicore.NewMachine(cfg, p, p.ReservedWays(sets))
	popt := multicore.ParallelPageRank(mP, g, p, 2, epochSize, true)
	report("P-OPT", mP, popt)

	fmt.Printf("\nmodeled parallel speedup of P-OPT over DRRIP: %.2fx\n", drrip.Stats.Cycles/popt.Stats.Cycles)
}

func report(name string, m *multicore.Machine, r multicore.PRResult) {
	fmt.Printf("%-8s %12d %12d %13.1f%% %12.3g %10d\n",
		name, r.Stats.LLCMisses, r.Stats.DRAMReads, 100*r.Stats.MaxBankShare, r.Stats.Cycles, m.EpochBarriers)
}
