// Quickstart: simulate PageRank over a synthetic power-law graph under
// DRRIP and under P-OPT, and compare cache locality and modeled speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/perf"
)

func main() {
	// 1. An input graph. Generators mirror the paper's suite; FromEdges
	//    and ParseEdgeList accept your own data.
	g := graph.Kron(15, 8, 1)
	fmt.Println("input:", g)

	// 2. A workload: the kernel allocates its simulated address space and
	//    identifies its irregular arrays and their transpose.
	runPR := func(name string, mkPolicy func(w *kernels.Workload, sets int) (cache.Policy, core.VertexIndexed, int)) perf.Breakdown {
		w := kernels.NewPageRank(g)
		var pol cache.Policy
		cfg := cache.Scaled(func() cache.Policy { return pol })
		p, hook, reserve := mkPolicy(w, cfg.LLCSize/(cfg.LLCWays*64))
		pol = p
		h := cache.NewHierarchy(cfg)
		if reserve > 0 {
			h.LLC.Reserve(reserve)
		}
		r := kernels.NewRunner(h, hook)
		w.Run(r)
		if err := w.Check(); err != nil {
			panic(err)
		}
		var streamed uint64
		if pp, ok := p.(*core.POPT); ok {
			streamed = pp.BytesStreamed
		}
		// The runner's live sink owns instruction accounting (the MPKI
		// denominator).
		sim := r.Sim()
		b := perf.Model(h, sim.Instructions, streamed, perf.Default())
		fmt.Printf("%-6s LLC miss rate %5.1f%%  MPKI %6.2f  DRAM reads %d\n",
			name, 100*h.LLCMissRate(), sim.MPKI(), h.DRAMReads)
		return b
	}

	// 3. Baseline: DRRIP (what server-class parts ship).
	base := runPR("DRRIP", func(_ *kernels.Workload, _ int) (cache.Policy, core.VertexIndexed, int) {
		return cache.NewDRRIP(1), nil, 0
	})

	// 4. P-OPT: build the Rereference Matrix from the graph's transpose,
	//    reserve LLC ways for its resident columns, and replace by
	//    quantized next references.
	popt := runPR("P-OPT", func(w *kernels.Workload, sets int) (cache.Policy, core.VertexIndexed, int) {
		p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 8, w.Irregular...)
		return p, p, p.ReservedWays(sets)
	})

	fmt.Printf("modeled speedup of P-OPT over DRRIP: %.2fx\n", perf.Speedup(base, popt))
}
